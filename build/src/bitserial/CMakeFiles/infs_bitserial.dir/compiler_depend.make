# Empty compiler generated dependencies file for infs_bitserial.
# This may be replaced when dependencies are built.
