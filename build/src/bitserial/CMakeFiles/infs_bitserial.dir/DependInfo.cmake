
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitserial/bit_matrix.cc" "src/bitserial/CMakeFiles/infs_bitserial.dir/bit_matrix.cc.o" "gcc" "src/bitserial/CMakeFiles/infs_bitserial.dir/bit_matrix.cc.o.d"
  "/root/repo/src/bitserial/compute_sram.cc" "src/bitserial/CMakeFiles/infs_bitserial.dir/compute_sram.cc.o" "gcc" "src/bitserial/CMakeFiles/infs_bitserial.dir/compute_sram.cc.o.d"
  "/root/repo/src/bitserial/transpose.cc" "src/bitserial/CMakeFiles/infs_bitserial.dir/transpose.cc.o" "gcc" "src/bitserial/CMakeFiles/infs_bitserial.dir/transpose.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/infs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
