file(REMOVE_RECURSE
  "CMakeFiles/infs_bitserial.dir/bit_matrix.cc.o"
  "CMakeFiles/infs_bitserial.dir/bit_matrix.cc.o.d"
  "CMakeFiles/infs_bitserial.dir/compute_sram.cc.o"
  "CMakeFiles/infs_bitserial.dir/compute_sram.cc.o.d"
  "CMakeFiles/infs_bitserial.dir/transpose.cc.o"
  "CMakeFiles/infs_bitserial.dir/transpose.cc.o.d"
  "libinfs_bitserial.a"
  "libinfs_bitserial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_bitserial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
