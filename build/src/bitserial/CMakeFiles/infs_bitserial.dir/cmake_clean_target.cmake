file(REMOVE_RECURSE
  "libinfs_bitserial.a"
)
