file(REMOVE_RECURSE
  "CMakeFiles/infs_sim.dir/config.cc.o"
  "CMakeFiles/infs_sim.dir/config.cc.o.d"
  "CMakeFiles/infs_sim.dir/event_queue.cc.o"
  "CMakeFiles/infs_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/infs_sim.dir/logging.cc.o"
  "CMakeFiles/infs_sim.dir/logging.cc.o.d"
  "CMakeFiles/infs_sim.dir/stats.cc.o"
  "CMakeFiles/infs_sim.dir/stats.cc.o.d"
  "libinfs_sim.a"
  "libinfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
