# Empty compiler generated dependencies file for infs_sim.
# This may be replaced when dependencies are built.
