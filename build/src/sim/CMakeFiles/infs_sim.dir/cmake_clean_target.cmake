file(REMOVE_RECURSE
  "libinfs_sim.a"
)
