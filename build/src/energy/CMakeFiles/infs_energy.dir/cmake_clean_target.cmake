file(REMOVE_RECURSE
  "libinfs_energy.a"
)
