file(REMOVE_RECURSE
  "CMakeFiles/infs_energy.dir/energy.cc.o"
  "CMakeFiles/infs_energy.dir/energy.cc.o.d"
  "libinfs_energy.a"
  "libinfs_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
