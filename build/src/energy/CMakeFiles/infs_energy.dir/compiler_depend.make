# Empty compiler generated dependencies file for infs_energy.
# This may be replaced when dependencies are built.
