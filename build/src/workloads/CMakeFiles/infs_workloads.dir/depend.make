# Empty dependencies file for infs_workloads.
# This may be replaced when dependencies are built.
