file(REMOVE_RECURSE
  "CMakeFiles/infs_workloads.dir/conv.cc.o"
  "CMakeFiles/infs_workloads.dir/conv.cc.o.d"
  "CMakeFiles/infs_workloads.dir/dwt.cc.o"
  "CMakeFiles/infs_workloads.dir/dwt.cc.o.d"
  "CMakeFiles/infs_workloads.dir/gather_mlp.cc.o"
  "CMakeFiles/infs_workloads.dir/gather_mlp.cc.o.d"
  "CMakeFiles/infs_workloads.dir/gauss.cc.o"
  "CMakeFiles/infs_workloads.dir/gauss.cc.o.d"
  "CMakeFiles/infs_workloads.dir/kmeans.cc.o"
  "CMakeFiles/infs_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/infs_workloads.dir/microbench.cc.o"
  "CMakeFiles/infs_workloads.dir/microbench.cc.o.d"
  "CMakeFiles/infs_workloads.dir/mm.cc.o"
  "CMakeFiles/infs_workloads.dir/mm.cc.o.d"
  "CMakeFiles/infs_workloads.dir/pointnet.cc.o"
  "CMakeFiles/infs_workloads.dir/pointnet.cc.o.d"
  "CMakeFiles/infs_workloads.dir/stencils.cc.o"
  "CMakeFiles/infs_workloads.dir/stencils.cc.o.d"
  "libinfs_workloads.a"
  "libinfs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
