file(REMOVE_RECURSE
  "libinfs_workloads.a"
)
