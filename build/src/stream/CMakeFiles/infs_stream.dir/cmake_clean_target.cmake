file(REMOVE_RECURSE
  "libinfs_stream.a"
)
