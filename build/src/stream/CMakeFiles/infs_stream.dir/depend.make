# Empty dependencies file for infs_stream.
# This may be replaced when dependencies are built.
