file(REMOVE_RECURSE
  "CMakeFiles/infs_stream.dir/near_engine.cc.o"
  "CMakeFiles/infs_stream.dir/near_engine.cc.o.d"
  "libinfs_stream.a"
  "libinfs_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
