file(REMOVE_RECURSE
  "libinfs_noc.a"
)
