file(REMOVE_RECURSE
  "CMakeFiles/infs_noc.dir/mesh.cc.o"
  "CMakeFiles/infs_noc.dir/mesh.cc.o.d"
  "libinfs_noc.a"
  "libinfs_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
