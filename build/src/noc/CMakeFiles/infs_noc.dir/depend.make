# Empty dependencies file for infs_noc.
# This may be replaced when dependencies are built.
