# Empty compiler generated dependencies file for infs_jit.
# This may be replaced when dependencies are built.
