file(REMOVE_RECURSE
  "libinfs_jit.a"
)
