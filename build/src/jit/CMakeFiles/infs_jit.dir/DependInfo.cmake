
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jit/decompose.cc" "src/jit/CMakeFiles/infs_jit.dir/decompose.cc.o" "gcc" "src/jit/CMakeFiles/infs_jit.dir/decompose.cc.o.d"
  "/root/repo/src/jit/jit.cc" "src/jit/CMakeFiles/infs_jit.dir/jit.cc.o" "gcc" "src/jit/CMakeFiles/infs_jit.dir/jit.cc.o.d"
  "/root/repo/src/jit/tiling.cc" "src/jit/CMakeFiles/infs_jit.dir/tiling.cc.o" "gcc" "src/jit/CMakeFiles/infs_jit.dir/tiling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tdfg/CMakeFiles/infs_tdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/infs_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/bitserial/CMakeFiles/infs_bitserial.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/infs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
