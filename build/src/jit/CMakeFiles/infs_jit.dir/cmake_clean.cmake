file(REMOVE_RECURSE
  "CMakeFiles/infs_jit.dir/decompose.cc.o"
  "CMakeFiles/infs_jit.dir/decompose.cc.o.d"
  "CMakeFiles/infs_jit.dir/jit.cc.o"
  "CMakeFiles/infs_jit.dir/jit.cc.o.d"
  "CMakeFiles/infs_jit.dir/tiling.cc.o"
  "CMakeFiles/infs_jit.dir/tiling.cc.o.d"
  "libinfs_jit.a"
  "libinfs_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
