# Empty compiler generated dependencies file for infs_tdfg.
# This may be replaced when dependencies are built.
