file(REMOVE_RECURSE
  "CMakeFiles/infs_tdfg.dir/graph.cc.o"
  "CMakeFiles/infs_tdfg.dir/graph.cc.o.d"
  "CMakeFiles/infs_tdfg.dir/hyperrect.cc.o"
  "CMakeFiles/infs_tdfg.dir/hyperrect.cc.o.d"
  "CMakeFiles/infs_tdfg.dir/interp.cc.o"
  "CMakeFiles/infs_tdfg.dir/interp.cc.o.d"
  "libinfs_tdfg.a"
  "libinfs_tdfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infs_tdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
