
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tdfg/graph.cc" "src/tdfg/CMakeFiles/infs_tdfg.dir/graph.cc.o" "gcc" "src/tdfg/CMakeFiles/infs_tdfg.dir/graph.cc.o.d"
  "/root/repo/src/tdfg/hyperrect.cc" "src/tdfg/CMakeFiles/infs_tdfg.dir/hyperrect.cc.o" "gcc" "src/tdfg/CMakeFiles/infs_tdfg.dir/hyperrect.cc.o.d"
  "/root/repo/src/tdfg/interp.cc" "src/tdfg/CMakeFiles/infs_tdfg.dir/interp.cc.o" "gcc" "src/tdfg/CMakeFiles/infs_tdfg.dir/interp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/infs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bitserial/CMakeFiles/infs_bitserial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
