file(REMOVE_RECURSE
  "libinfs_tdfg.a"
)
