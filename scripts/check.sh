#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite —
# once plain and once under ASan+UBSan (INFS_SANITIZE=ON).
#
# Usage: scripts/check.sh [--plain-only|--sanitize-only]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode=${1:-all}

run_suite() {
    local dir=$1
    shift
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j "$jobs"
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ $mode != --sanitize-only ]]; then
    echo "== plain build =="
    run_suite build
fi

if [[ $mode != --plain-only ]]; then
    echo "== sanitized build (ASan+UBSan) =="
    run_suite build-asan -DINFS_SANITIZE=ON
fi

echo "check.sh: all suites passed"
