#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite —
# once plain and once under ASan+UBSan (INFS_SANITIZE=ON). The lint
# suite adds clang-tidy (when installed) and the infs-verify static
# analyzer over every seed workload.
#
# Usage: scripts/check.sh [--plain-only|--sanitize-only|--lint-only|--lint]
#                         [--tier1] [--threads N]
#                         [--backend fabric|functional|timing]
#                         [--simd auto|off|portable|avx2|neon]
#
# --tier1 builds once and runs only the ctest tier1 label — the fast
# per-PR suite (functional/timing backends plus the differential subset);
# the full bit-accurate sweeps stay on the default full run.
#
# --simd exports INFS_SIMD for every ctest invocation (the bitserial
# layer resolves its kernel table from it) and rides on the bench smoke;
# --backend selects the bench smoke's execution backend. Unknown values
# exit 2 before anything builds.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
mode=all
lint=no
backend=""
simd=""

while [[ $# -gt 0 ]]; do
    case $1 in
        --plain-only|--sanitize-only) mode=$1 ;;
        --tier1) mode=tier1 ;;
        --lint) lint=yes ;;
        --lint-only) lint=yes; mode=lint-only ;;
        --threads)
            [[ $# -ge 2 ]] || { echo "--threads needs a value" >&2; exit 2; }
            jobs=$2
            shift ;;
        --backend)
            [[ $# -ge 2 ]] || { echo "--backend needs a value" >&2; exit 2; }
            case $2 in
                fabric|functional|timing) backend=$2 ;;
                *) echo "check.sh: unknown backend '$2'" >&2; exit 2 ;;
            esac
            shift ;;
        --simd)
            [[ $# -ge 2 ]] || { echo "--simd needs a value" >&2; exit 2; }
            case $2 in
                auto|off|portable|avx2|neon) simd=$2 ;;
                *) echo "check.sh: unknown simd isa '$2'" >&2; exit 2 ;;
            esac
            shift ;;
        *) echo "usage: $0 [--plain-only|--sanitize-only|--lint-only|--lint]" \
                "[--tier1] [--threads N] [--backend NAME] [--simd ISA]" >&2
           exit 2 ;;
    esac
    shift
done

# Every test binary resolves its SIMD kernel table from INFS_SIMD, so one
# export threads the knob through all ctest invocations below.
[[ -n $simd ]] && export INFS_SIMD=$simd

# One-scenario bench smoke with the selected backend/simd knobs: proves
# the CLI path end to end without the full bench sweep.
bench_smoke() {
    local dir=$1
    local args=(--quick --repeat 1 --json "$dir/bench_smoke.json" conv2d)
    [[ -n $backend ]] && args+=(--backend "$backend")
    [[ -n $simd ]] && args+=(--simd "$simd")
    cmake --build "$dir" -j "$jobs" --target infs-bench
    "$dir/tools/infs-bench" "${args[@]}"
}

run_suite() {
    local dir=$1
    shift
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j "$jobs"
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_lint() {
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    cmake --build build -j "$jobs" --target infs-verify
    if command -v clang-tidy > /dev/null 2>&1; then
        echo "-- clang-tidy over src/"
        # xargs -P forks parallel clang-tidy batches; a failing batch
        # surfaces as a non-zero xargs status that `set -e` inside a
        # pipeline used to swallow. Capture and propagate it explicitly.
        local tidy_status=0
        find src -name '*.cc' -print0 |
            xargs -0 -P "$jobs" -n 4 clang-tidy -p build --quiet ||
            tidy_status=$?
        if [[ $tidy_status -ne 0 ]]; then
            echo "check.sh: clang-tidy failed (status $tidy_status)" >&2
            return "$tidy_status"
        fi
    else
        echo "-- clang-tidy not installed; skipping"
    fi
    echo "-- infs-verify over all seed workloads (level=full)"
    build/tools/infs-verify --all --level=full
}

if [[ $mode == tier1 ]]; then
    echo "== tier-1 build =="
    cmake -B build -S .
    cmake --build build -j "$jobs"
    ctest --test-dir build -L tier1 --output-on-failure -j "$jobs"
    if [[ -n $backend || -n $simd ]]; then
        echo "== bench smoke (backend=${backend:-default} simd=${simd:-auto}) =="
        bench_smoke build
    fi
    echo "check.sh: tier-1 suite passed"
    exit 0
fi

if [[ $lint == yes ]]; then
    echo "== lint =="
    run_lint
    [[ $mode == lint-only ]] && { echo "check.sh: lint passed"; exit 0; }
    mode=all
fi

if [[ $mode != --sanitize-only ]]; then
    echo "== plain build =="
    run_suite build
    if [[ -n $backend || -n $simd ]]; then
        echo "== bench smoke (backend=${backend:-default} simd=${simd:-auto}) =="
        bench_smoke build
    fi
fi

if [[ $mode != --plain-only ]]; then
    echo "== sanitized build (ASan+UBSan) =="
    run_suite build-asan -DINFS_SANITIZE=ON
fi

echo "check.sh: all suites passed"
