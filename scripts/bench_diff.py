#!/usr/bin/env python3
"""Compare two infs-bench JSON files and fail on simulated regressions.

Usage: bench_diff.py BASELINE.json CURRENT.json [--max-regress PCT]

Two gates, both on machine-independent quantities (DESIGN.md section 10):

- `sim_cycles` must not regress beyond --max-regress percent; simulated
  cycles are deterministic across machines and thread counts, so any
  change is a real model change, not noise.
- `checksum` must be byte-identical whenever both files report a
  non-zero value. Checksums fingerprint the bit-accurate fabric result
  (or, from schema v2 on, the functional executor's output tensors when
  no fabric pass ran), so any drift is a correctness bug, never noise.
  A zero on either side means that file's harness predates checksum
  coverage for the scenario; the pair is reported but does not gate.

Wall-clock fields are reported for context but never gate. Accepts both
the infs-bench-v1 and infs-bench-v2 schemas (v2 adds repeat/median
timing and per-command-kind fabric breakdowns; the gated fields are
identical). Exit status: 0 within budget, 1 regression or checksum
mismatch, 2 usage/schema error.
"""

import argparse
import json
import sys

KNOWN_SCHEMAS = ("infs-bench-v1", "infs-bench-v2")


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") not in KNOWN_SCHEMAS:
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return {w["name"]: w for w in data["workloads"]}


def parse_checksum(row):
    """Checksum as an int, or None when absent (early v1 files)."""
    raw = row.get("checksum")
    if raw is None:
        return None
    return int(raw, 16) if isinstance(raw, str) else int(raw)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=15.0,
                    help="max sim_cycles increase in percent (default 15)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failed = []
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            failed.append(f"{name}: missing from {args.current}")
            continue
        bc, cc = b["sim_cycles"], c["sim_cycles"]
        delta = 100.0 * (cc - bc) / bc if bc else (100.0 if cc else 0.0)
        marker = " "
        if delta > args.max_regress:
            failed.append(f"{name}: sim_cycles {bc} -> {cc} "
                          f"(+{delta:.1f}% > {args.max_regress:.0f}%)")
            marker = "!"

        bsum, csum = parse_checksum(b), parse_checksum(c)
        cks = "checksum ok"
        if bsum is None or csum is None:
            cks = "checksum n/a"
        elif bsum == 0 or csum == 0:
            cks = "checksum uncovered"
        elif bsum != csum:
            failed.append(f"{name}: checksum {b['checksum']} -> "
                          f"{c['checksum']} (bit drift)")
            marker = "!"
            cks = "CHECKSUM MISMATCH"
        print(f"{marker} {name:<18} sim_cycles {bc:>12} -> {cc:>12} "
              f"({delta:+6.1f}%)  wall {b['wall_ms']:8.2f} -> "
              f"{c['wall_ms']:8.2f} ms  {cks}")

    for name in sorted(set(cur) - set(base)):
        print(f"+ {name:<18} new workload "
              f"(sim_cycles {cur[name]['sim_cycles']})")

    if failed:
        print(f"\n{len(failed)} gate failure(s):", file=sys.stderr)
        for line in failed:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nbench_diff: all workloads within budget, checksums stable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
