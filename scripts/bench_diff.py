#!/usr/bin/env python3
"""Compare two infs-bench JSON files and fail on simulated regressions.

Usage: bench_diff.py BASELINE.json CURRENT.json [--max-regress PCT]

The gate is on `sim_cycles` only: simulated cycles are deterministic
across machines and thread counts (DESIGN.md section 10), so any change
is a real model change, not noise. Wall-clock fields are reported for
context but never gate. Exit status: 0 within budget, 1 regression,
2 usage/schema error.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "infs-bench-v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return {w["name"]: w for w in data["workloads"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=15.0,
                    help="max sim_cycles increase in percent (default 15)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failed = []
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            failed.append(f"{name}: missing from {args.current}")
            continue
        bc, cc = b["sim_cycles"], c["sim_cycles"]
        delta = 100.0 * (cc - bc) / bc if bc else (100.0 if cc else 0.0)
        marker = " "
        if delta > args.max_regress:
            failed.append(f"{name}: sim_cycles {bc} -> {cc} "
                          f"(+{delta:.1f}% > {args.max_regress:.0f}%)")
            marker = "!"
        print(f"{marker} {name:<18} sim_cycles {bc:>12} -> {cc:>12} "
              f"({delta:+6.1f}%)  wall {b['wall_ms']:8.2f} -> "
              f"{c['wall_ms']:8.2f} ms")

    for name in sorted(set(cur) - set(base)):
        print(f"+ {name:<18} new workload "
              f"(sim_cycles {cur[name]['sim_cycles']})")

    if failed:
        print(f"\n{len(failed)} regression(s) beyond "
              f"{args.max_regress:.0f}%:", file=sys.stderr)
        for line in failed:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nbench_diff: all workloads within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
