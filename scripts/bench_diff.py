#!/usr/bin/env python3
"""Compare two infs-bench JSON files and fail on simulated regressions.

Usage: bench_diff.py BASELINE.json CURRENT.json [--max-regress PCT]
                     [--expect-backend NAME] [--min-improve PCT]
                     [--min-improve-count N] [--min-improve-metric M]

Gates, all on machine-independent quantities (DESIGN.md section 10):

- `sim_cycles` must not regress beyond --max-regress percent; simulated
  cycles are deterministic across machines, thread counts, and execution
  backends (the Executor timing model is backend-independent), so any
  change is a real model change, not noise. The gate is directional:
  only increases can fail it, a sim_cycles reduction of any size always
  passes (improvements are the point of optimizer PRs).
- With --min-improve PCT, at least --min-improve-count workloads
  (default 1) must show a reduction of at least PCT percent versus
  baseline on --min-improve-metric (default sim_cycles). This turns the
  diff into a claim check for performance PRs: CI fails if an
  advertised optimization stops delivering, not just if something
  regresses. The metric may also be fabric_wall_ms — host wall clock of
  the bit-accurate fabric passes — for host-optimization PRs (SIMD
  kernels, DESIGN.md section 14); that comparison is only meaningful
  when both files come from the SAME machine in the SAME CI job (e.g.
  a portable-SIMD run vs a native run), which is how the bench-smoke
  lane uses it. Rows where either side lacks a positive value of the
  metric are skipped, never counted as improved.
- `checksum` must be byte-identical whenever both files report a
  non-zero value AND both files' backends produce bit-certified sums.
  The fabric and functional backends are certified byte-identical
  (DESIGN.md section 12, tests/core/test_backend_diff.cc), so any pair
  drawn from {fabric, functional} gates; the timing backend reports
  functional-store fallback hashes that are not fabric bit patterns, so
  rows from a timing run are reported but never gate. A zero on either
  side means that file's harness predates checksum coverage for the
  scenario; the pair is reported but does not gate.

Wall-clock fields are reported for context and never gate the
regression check (only the explicit opt-in improvement gate above may
read one). Accepts the infs-bench-v1 through -v5 schemas (v2 added
repeat/median timing and fabric breakdowns; v3 adds the top-level
`backend` and per-row `backend_sim_cycles`; v4 adds `job_sim_cycles`,
`cmd_stats`, and optional ablation rows; v5 adds `simd_isa`,
`numa_nodes`, and per-row schedule provenance, none of which gate
here). Files older than v3 are fabric-backend by definition. --expect-backend fails fast when CURRENT was produced by a
different backend than the pipeline intended (a mis-wired CI lane would
otherwise silently skip the checksum gate). Exit status: 0 within
budget, 1 regression or checksum mismatch, 2 usage/schema error.
"""

import argparse
import json
import sys

KNOWN_SCHEMAS = ("infs-bench-v1", "infs-bench-v2", "infs-bench-v3",
                 "infs-bench-v4", "infs-bench-v5")

# Backends whose checksums are certified identical to the bit-accurate
# fabric (see tests/core/test_backend_diff.cc).
BIT_CERTIFIED_BACKENDS = ("fabric", "functional")


def load(path):
    """Return (backend_name, {workload_name: row}) for one bench file."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") not in KNOWN_SCHEMAS:
        print(f"{path}: unexpected schema {data.get('schema')!r}",
              file=sys.stderr)
        sys.exit(2)
    backend = data.get("backend", "fabric")
    return backend, {w["name"]: w for w in data["workloads"]}


def parse_checksum(row):
    """Checksum as an int, or None when absent (early v1 files)."""
    raw = row.get("checksum")
    if raw is None:
        return None
    return int(raw, 16) if isinstance(raw, str) else int(raw)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=15.0,
                    help="max sim_cycles increase in percent (default 15)")
    ap.add_argument("--expect-backend", metavar="NAME",
                    help="fail (exit 2) unless CURRENT was produced by "
                         "this backend")
    ap.add_argument("--min-improve", type=float, metavar="PCT",
                    help="require a sim_cycles reduction of at least PCT "
                         "percent on --min-improve-count workloads")
    ap.add_argument("--min-improve-count", type=int, default=1,
                    metavar="N",
                    help="workloads that must meet --min-improve "
                         "(default 1)")
    ap.add_argument("--min-improve-metric", metavar="M",
                    choices=("sim_cycles", "fabric_wall_ms"),
                    default="sim_cycles",
                    help="quantity the improvement gate reads (default "
                         "sim_cycles; fabric_wall_ms for same-machine "
                         "host-perf claims)")
    args = ap.parse_args()
    if args.min_improve is not None and args.min_improve_count < 1:
        print("--min-improve-count must be >= 1", file=sys.stderr)
        sys.exit(2)

    base_backend, base = load(args.baseline)
    cur_backend, cur = load(args.current)

    if args.expect_backend and cur_backend != args.expect_backend:
        print(f"{args.current}: backend {cur_backend!r}, expected "
              f"{args.expect_backend!r}", file=sys.stderr)
        sys.exit(2)

    gate_checksums = (base_backend in BIT_CERTIFIED_BACKENDS
                      and cur_backend in BIT_CERTIFIED_BACKENDS)
    if base_backend != cur_backend:
        print(f"comparing backends: {base_backend} (baseline) vs "
              f"{cur_backend} (current)"
              + ("" if gate_checksums
                 else " — checksums reported, not gated"))

    failed = []
    improved = []
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            failed.append(f"{name}: missing from {args.current}")
            continue
        bc, cc = b["sim_cycles"], c["sim_cycles"]
        delta = 100.0 * (cc - bc) / bc if bc else (100.0 if cc else 0.0)
        if args.min_improve is not None:
            bm = b.get(args.min_improve_metric)
            cm = c.get(args.min_improve_metric)
            if bm and cm is not None and bm > 0:
                mdelta = 100.0 * (cm - bm) / bm
                if -mdelta >= args.min_improve:
                    improved.append(name)
        marker = " "
        if delta > args.max_regress:
            failed.append(f"{name}: sim_cycles {bc} -> {cc} "
                          f"(+{delta:.1f}% > {args.max_regress:.0f}%)")
            marker = "!"

        bsum, csum = parse_checksum(b), parse_checksum(c)
        cks = "checksum ok"
        if bsum is None or csum is None:
            cks = "checksum n/a"
        elif bsum == 0 or csum == 0:
            cks = "checksum uncovered"
        elif not gate_checksums:
            cks = ("checksum match (ungated)" if bsum == csum
                   else "checksum differs (ungated: backends not "
                        "bit-comparable)")
        elif bsum != csum:
            failed.append(f"{name}: checksum {b['checksum']} -> "
                          f"{c['checksum']} (bit drift)")
            marker = "!"
            cks = "CHECKSUM MISMATCH"
        print(f"{marker} {name:<18} sim_cycles {bc:>12} -> {cc:>12} "
              f"({delta:+6.1f}%)  wall {b['wall_ms']:8.2f} -> "
              f"{c['wall_ms']:8.2f} ms  {cks}")

    for name in sorted(set(cur) - set(base)):
        print(f"+ {name:<18} new workload "
              f"(sim_cycles {cur[name]['sim_cycles']})")

    if args.min_improve is not None:
        if len(improved) < args.min_improve_count:
            failed.append(
                f"improvement gate: {len(improved)} workload(s) improved "
                f"{args.min_improve_metric} >= {args.min_improve:g}% "
                f"({', '.join(improved) if improved else 'none'}), "
                f"need {args.min_improve_count}")
        else:
            print(f"improvement gate: {len(improved)} workload(s) "
                  f">= {args.min_improve:g}% faster on "
                  f"{args.min_improve_metric} ({', '.join(improved)})")

    if failed:
        print(f"\n{len(failed)} gate failure(s):", file=sys.stderr)
        for line in failed:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nbench_diff: all workloads within budget, checksums stable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
