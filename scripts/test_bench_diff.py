#!/usr/bin/env python3
"""Tests for bench_diff.py: schema acceptance, gating, backend rules.

Written as unittest.TestCase so both `python3 -m unittest` (what CI runs;
no extra packages) and `pytest scripts/` (local convenience) discover
them. Each test drives bench_diff.py as a subprocess — the exit status
IS the contract CI depends on.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_diff.py")


def row(name, sim_cycles=1000, checksum="0x00000000deadbeef",
        wall_ms=1.0, **extra):
    r = {"name": name, "sim_cycles": sim_cycles, "checksum": checksum,
         "wall_ms": wall_ms}
    r.update(extra)
    return r


def bench_file(rows, schema="infs-bench-v3", backend="fabric"):
    data = {"schema": schema, "mode": "quick", "threads": 1, "repeat": 1,
            "workloads": rows}
    if backend is not None:
        data["backend"] = backend
    if schema == "infs-bench-v1":
        # v1 predates the repeat/backend fields entirely.
        data.pop("repeat")
        data.pop("backend", None)
    return data


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, fname, data):
        path = os.path.join(self.dir.name, fname)
        with open(path, "w") as f:
            json.dump(data, f)
        return path

    def run_diff(self, base, cur, *flags):
        return subprocess.run(
            [sys.executable, SCRIPT,
             self.write("base.json", base), self.write("cur.json", cur),
             *flags],
            capture_output=True, text=True)

    # ---- schema acceptance -------------------------------------------

    def test_v1_schema_accepted(self):
        data = bench_file([row("vec_add")], schema="infs-bench-v1")
        self.assertEqual(self.run_diff(data, data).returncode, 0)

    def test_v2_schema_accepted(self):
        data = bench_file([row("vec_add")], schema="infs-bench-v2",
                          backend=None)
        self.assertEqual(self.run_diff(data, data).returncode, 0)

    def test_v3_schema_accepted(self):
        data = bench_file([row("vec_add", backend_sim_cycles=42)])
        self.assertEqual(self.run_diff(data, data).returncode, 0)

    def test_unknown_schema_rejected(self):
        good = bench_file([row("vec_add")])
        bad = bench_file([row("vec_add")], schema="infs-bench-v99")
        res = self.run_diff(good, bad)
        self.assertEqual(res.returncode, 2)
        self.assertIn("unexpected schema", res.stderr + res.stdout)

    def test_v4_schema_accepted(self):
        data = bench_file(
            [row("vec_add", job_sim_cycles=2706, commands=43,
                 cmd_stats={"fused_moves": 5, "elided_syncs": 2},
                 ablation=[{"variant": "base", "sim_cycles": 1000}])],
            schema="infs-bench-v4")
        self.assertEqual(self.run_diff(data, data).returncode, 0)

    def test_v5_schema_accepted(self):
        data = bench_file(
            [row("vec_add", schedule_id=1, schedule_candidates=3,
                 fabric_breakdown={"scratch_allocs": 12,
                                   "bank_occupancy_imbalance": 0.25})],
            schema="infs-bench-v5")
        data["simd_isa"] = "avx2"
        data["numa_nodes"] = 2
        self.assertEqual(self.run_diff(data, data).returncode, 0)

    def test_v2_baseline_vs_v3_current_mix(self):
        # Upgrading the bench tool must not invalidate old baselines.
        base = bench_file([row("vec_add")], schema="infs-bench-v2",
                          backend=None)
        cur = bench_file([row("vec_add")])
        self.assertEqual(self.run_diff(base, cur).returncode, 0)

    # ---- sim_cycles gate ---------------------------------------------

    def test_sim_cycles_regression_fails(self):
        base = bench_file([row("vec_add", sim_cycles=1000)])
        cur = bench_file([row("vec_add", sim_cycles=1200)])  # +20%
        res = self.run_diff(base, cur)
        self.assertEqual(res.returncode, 1)
        self.assertIn("sim_cycles", res.stderr)

    def test_sim_cycles_within_budget_passes(self):
        base = bench_file([row("vec_add", sim_cycles=1000)])
        cur = bench_file([row("vec_add", sim_cycles=1100)])  # +10%
        self.assertEqual(self.run_diff(base, cur).returncode, 0)

    def test_max_regress_flag_tightens_gate(self):
        base = bench_file([row("vec_add", sim_cycles=1000)])
        cur = bench_file([row("vec_add", sim_cycles=1100)])
        res = self.run_diff(base, cur, "--max-regress", "5")
        self.assertEqual(res.returncode, 1)

    def test_sim_cycles_gated_even_across_backends(self):
        # The Executor timing model is backend-independent, so cycles
        # gate no matter which backend produced the file.
        base = bench_file([row("vec_add", sim_cycles=1000)])
        cur = bench_file([row("vec_add", sim_cycles=2000)],
                         backend="timing")
        self.assertEqual(self.run_diff(base, cur).returncode, 1)

    def test_sim_cycles_gate_is_directional(self):
        # A reduction of any magnitude must always pass: the regression
        # gate is one-sided.
        base = bench_file([row("vec_add", sim_cycles=1000)])
        cur = bench_file([row("vec_add", sim_cycles=10)])  # -99%
        self.assertEqual(self.run_diff(base, cur).returncode, 0)

    def test_missing_workload_fails(self):
        base = bench_file([row("vec_add"), row("dwt2d")])
        cur = bench_file([row("vec_add")])
        res = self.run_diff(base, cur)
        self.assertEqual(res.returncode, 1)
        self.assertIn("missing", res.stderr)

    # ---- checksum gate ------------------------------------------------

    def test_checksum_mismatch_fails_same_backend(self):
        base = bench_file([row("vec_add", checksum="0x1111")])
        cur = bench_file([row("vec_add", checksum="0x2222")])
        res = self.run_diff(base, cur)
        self.assertEqual(res.returncode, 1)
        self.assertIn("bit drift", res.stderr)

    def test_checksum_gated_fabric_vs_functional(self):
        # fabric vs functional checksums are bit-certified identical, so
        # a drift between them is a real bug and must gate.
        base = bench_file([row("vec_add", checksum="0x1111")],
                          backend="fabric")
        cur = bench_file([row("vec_add", checksum="0x2222")],
                         backend="functional")
        self.assertEqual(self.run_diff(base, cur).returncode, 1)

    def test_checksum_matching_fabric_vs_functional_passes(self):
        base = bench_file([row("vec_add")], backend="fabric")
        cur = bench_file([row("vec_add")], backend="functional")
        self.assertEqual(self.run_diff(base, cur).returncode, 0)

    def test_checksum_not_gated_vs_timing_backend(self):
        # Timing-backend rows carry functional-store fallback hashes,
        # not fabric bit patterns: report, don't gate.
        base = bench_file([row("vec_add", checksum="0x1111")])
        cur = bench_file([row("vec_add", checksum="0x2222")],
                         backend="timing")
        res = self.run_diff(base, cur)
        self.assertEqual(res.returncode, 0)
        self.assertIn("ungated", res.stdout)

    def test_zero_checksum_reported_not_gated(self):
        base = bench_file([row("vec_add", checksum="0x0")])
        cur = bench_file([row("vec_add", checksum="0x2222")])
        res = self.run_diff(base, cur)
        self.assertEqual(res.returncode, 0)
        self.assertIn("uncovered", res.stdout)

    # ---- backend expectations ----------------------------------------

    def test_expect_backend_match_passes(self):
        data = bench_file([row("vec_add")], backend="functional")
        res = self.run_diff(data, data, "--expect-backend", "functional")
        self.assertEqual(res.returncode, 0)

    def test_expect_backend_mismatch_fails(self):
        data = bench_file([row("vec_add")], backend="fabric")
        res = self.run_diff(data, data, "--expect-backend", "functional")
        self.assertEqual(res.returncode, 2)
        self.assertIn("expected", res.stderr + res.stdout)

    def test_pre_v3_files_default_to_fabric_backend(self):
        data = bench_file([row("vec_add")], schema="infs-bench-v2",
                          backend=None)
        res = self.run_diff(data, data, "--expect-backend", "fabric")
        self.assertEqual(res.returncode, 0)

    # ---- improvement gate (--min-improve) ----------------------------

    def test_min_improve_met_passes(self):
        base = bench_file([row("vec_add", sim_cycles=1000)])
        cur = bench_file([row("vec_add", sim_cycles=890)])  # -11%
        res = self.run_diff(base, cur, "--min-improve", "10")
        self.assertEqual(res.returncode, 0)
        self.assertIn("improvement gate", res.stdout)

    def test_min_improve_unmet_fails(self):
        base = bench_file([row("vec_add", sim_cycles=1000)])
        cur = bench_file([row("vec_add", sim_cycles=950)])  # -5%
        res = self.run_diff(base, cur, "--min-improve", "10")
        self.assertEqual(res.returncode, 1)
        self.assertIn("improvement gate", res.stderr)

    def test_min_improve_count_semantics(self):
        base = bench_file([row("a", sim_cycles=1000),
                           row("b", sim_cycles=1000),
                           row("c", sim_cycles=1000)])
        cur = bench_file([row("a", sim_cycles=850),   # -15%
                          row("b", sim_cycles=880),   # -12%
                          row("c", sim_cycles=990)])  # -1%
        ok = self.run_diff(base, cur, "--min-improve", "10",
                           "--min-improve-count", "2")
        self.assertEqual(ok.returncode, 0)
        fail = self.run_diff(base, cur, "--min-improve", "10",
                             "--min-improve-count", "3")
        self.assertEqual(fail.returncode, 1)

    def test_min_improve_exact_threshold_counts(self):
        base = bench_file([row("vec_add", sim_cycles=1000)])
        cur = bench_file([row("vec_add", sim_cycles=900)])  # exactly -10%
        res = self.run_diff(base, cur, "--min-improve", "10")
        self.assertEqual(res.returncode, 0)

    def test_min_improve_off_by_default(self):
        # Without the flag, equal cycles never trip an improvement gate.
        data = bench_file([row("vec_add", sim_cycles=1000)])
        res = self.run_diff(data, data)
        self.assertEqual(res.returncode, 0)
        self.assertNotIn("improvement gate", res.stdout)

    def test_min_improve_bad_count_rejected(self):
        data = bench_file([row("vec_add")])
        res = self.run_diff(data, data, "--min-improve", "10",
                            "--min-improve-count", "0")
        self.assertEqual(res.returncode, 2)

    # ---- improvement gate on fabric_wall_ms (host-perf claims) -------

    def test_min_improve_fabric_wall_met_passes(self):
        # A 2x host speedup of the fabric passes (sim_cycles unchanged:
        # SIMD kernels must never move simulated time).
        base = bench_file([row("vec_add", fabric_wall_ms=100.0)],
                          schema="infs-bench-v5")
        cur = bench_file([row("vec_add", fabric_wall_ms=40.0)],
                         schema="infs-bench-v5")
        res = self.run_diff(base, cur, "--min-improve", "50",
                            "--min-improve-metric", "fabric_wall_ms")
        self.assertEqual(res.returncode, 0)
        self.assertIn("fabric_wall_ms", res.stdout)

    def test_min_improve_fabric_wall_unmet_fails(self):
        base = bench_file([row("vec_add", fabric_wall_ms=100.0)],
                          schema="infs-bench-v5")
        cur = bench_file([row("vec_add", fabric_wall_ms=80.0)],  # -20%
                         schema="infs-bench-v5")
        res = self.run_diff(base, cur, "--min-improve", "50",
                            "--min-improve-metric", "fabric_wall_ms")
        self.assertEqual(res.returncode, 1)
        self.assertIn("improvement gate", res.stderr)

    def test_min_improve_fabric_wall_missing_rows_skipped(self):
        # Rows without a positive fabric_wall_ms (e.g. the timing
        # backend ran no fabric pass) never count as improved.
        base = bench_file([row("a", fabric_wall_ms=0.0),
                           row("b")],
                          schema="infs-bench-v5")
        cur = bench_file([row("a", fabric_wall_ms=0.0),
                          row("b")],
                         schema="infs-bench-v5")
        res = self.run_diff(base, cur, "--min-improve", "50",
                            "--min-improve-metric", "fabric_wall_ms")
        self.assertEqual(res.returncode, 1)

    def test_min_improve_metric_default_is_sim_cycles(self):
        # fabric_wall_ms noise must not satisfy the default gate.
        base = bench_file([row("vec_add", sim_cycles=1000,
                               fabric_wall_ms=100.0)])
        cur = bench_file([row("vec_add", sim_cycles=1000,
                              fabric_wall_ms=10.0)])
        res = self.run_diff(base, cur, "--min-improve", "50")
        self.assertEqual(res.returncode, 1)

    def test_min_improve_bad_metric_rejected(self):
        data = bench_file([row("vec_add")])
        res = self.run_diff(data, data, "--min-improve", "10",
                            "--min-improve-metric", "wall_ms")
        self.assertEqual(res.returncode, 2)


if __name__ == "__main__":
    unittest.main()
