/**
 * @file
 * Shared helpers for the paper-reproduction benches: the Table 3 workload
 * roster at the paper's input sizes, paradigm runners, and table printing.
 * All benches run timing-only (functional correctness is covered by the
 * test suite at reduced sizes).
 */

#ifndef INFS_BENCH_COMMON_HH
#define INFS_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/executor.hh"
#include "workloads/pointnet.hh"
#include "workloads/workloads.hh"

namespace infs {
namespace bench {

/** A named workload factory (so each run gets a fresh system). */
struct Entry {
    std::string name;
    std::function<Workload()> make;
};

/** Fig 11/12/14/18's ten benchmarks at Table 3 sizes. For mm, kmeans,
 * and gather_mlp the best dataflow per paradigm is chosen by the caller
 * (see fig15 for the comparison); here the factories return the
 * Inf-S-preferred outer form. */
inline std::vector<Entry>
table3Workloads()
{
    return {
        {"stencil1d", [] { return makeStencil1d(4 << 20, 10); }},
        {"stencil2d", [] { return makeStencil2d(2048, 2048, 10); }},
        {"stencil3d", [] { return makeStencil3d(512, 512, 16, 10); }},
        {"dwt2d", [] { return makeDwt2d(2048, 2048); }},
        {"gauss_elim", [] { return makeGaussElim(2048); }},
        {"conv2d", [] { return makeConv2d(2048, 2048); }},
        {"conv3d", [] { return makeConv3d(256, 256, 64, 64); }},
        {"mm", [] { return makeMm(2048, 2048, 2048, true); }},
        {"kmeans", [] { return makeKmeans(32 << 10, 128, 128, true); }},
        {"gather_mlp",
         [] { return makeGatherMlp(32 << 10, 128, 128, 64 << 10, true); }},
    };
}

/** The 13 implementation variants of Fig 13/14/16 (in/out split out). */
inline std::vector<Entry>
table3Variants()
{
    return {
        {"stencil1d", [] { return makeStencil1d(4 << 20, 10); }},
        {"stencil2d", [] { return makeStencil2d(2048, 2048, 10); }},
        {"stencil3d", [] { return makeStencil3d(512, 512, 16, 10); }},
        {"dwt2d", [] { return makeDwt2d(2048, 2048); }},
        {"gauss_elim", [] { return makeGaussElim(2048); }},
        {"conv2d", [] { return makeConv2d(2048, 2048); }},
        {"conv3d", [] { return makeConv3d(256, 256, 64, 64); }},
        {"mm/in", [] { return makeMm(2048, 2048, 2048, false); }},
        {"mm/out", [] { return makeMm(2048, 2048, 2048, true); }},
        {"kmeans/in", [] { return makeKmeans(32 << 10, 128, 128, false); }},
        {"kmeans/out", [] { return makeKmeans(32 << 10, 128, 128, true); }},
        {"gather_mlp/in",
         [] { return makeGatherMlp(32 << 10, 128, 128, 64 << 10, false); }},
        {"gather_mlp/out",
         [] { return makeGatherMlp(32 << 10, 128, 128, 64 << 10, true); }},
    };
}

/** Run @p w on a fresh Table 2 system under @p p (timing-only). */
inline ExecStats
run(Paradigm p, const Workload &w)
{
    InfinitySystem sys;
    Executor exec(sys, p);
    return exec.run(w);
}

/** Run and keep the faster of the inner/outer dataflow (the paper picks
 * the best implementation per configuration, §7). */
inline ExecStats
runBest(Paradigm p, const std::function<Workload(bool)> &make)
{
    ExecStats in = run(p, make(false));
    ExecStats out = run(p, make(true));
    return in.cycles <= out.cycles ? in : out;
}

/** Geometric mean. */
inline double
geomean(const std::vector<double> &v)
{
    double acc = 0.0;
    for (double x : v)
        acc += std::log(x);
    return v.empty() ? 0.0 : std::exp(acc / double(v.size()));
}

/** Print a table header: name column plus the given column labels. */
inline void
printHeader(const char *title, const std::vector<std::string> &cols)
{
    std::printf("\n=== %s ===\n%-16s", title, "benchmark");
    for (const auto &c : cols)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &vals,
         const char *fmt = " %12.2f")
{
    std::printf("%-16s", name.c_str());
    for (double v : vals)
        std::printf(fmt, v);
    std::printf("\n");
}

} // namespace bench
} // namespace infs

#endif // INFS_BENCH_COMMON_HH
