/**
 * @file
 * Fig 2: speedup of Base-1T / Base-64T / Near-L3 / In-L3 for vec_add and
 * array_sum across input sizes (fp32, data cached in L3 and already
 * transposed, per the paper's setup).
 */

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("Fig 2: Speedup of Different Paradigms (fp32)\n");
    std::printf("%s\n", defaultSystemConfig().summary().c_str());
    printHeader("speedup over Base-1T",
                {"Base-1T", "Base-64T", "Near-L3", "In-L3"});

    auto sweep = [&](const char *name,
                     const std::function<Workload(Coord)> &make) {
        for (Coord n : {Coord(16) << 10, Coord(64) << 10, Coord(256) << 10,
                        Coord(1) << 20, Coord(4) << 20}) {
            Workload w = make(n);
            w.assumeTransposed = true; // Fig 2's stated assumption.
            double base1 = double(run(Paradigm::Base1T, w).cycles);
            std::vector<double> row{
                1.0,
                base1 / double(run(Paradigm::Base, w).cycles),
                base1 / double(run(Paradigm::NearL3, w).cycles),
                base1 / double(run(Paradigm::InL3, w).cycles),
            };
            char label[64];
            std::snprintf(label, sizeof label, "%s/%lldk", name,
                          static_cast<long long>(n >> 10));
            printRow(label, row);
        }
    };
    sweep("vec_add", [](Coord n) { return makeVecAdd(n); });
    sweep("array_sum", [](Coord n) { return makeArraySum(n); });

    // The paper's headline: at 4M elements In-L3 beats Near-L3 by ~21x on
    // vec_add.
    Workload w = makeVecAdd(4 << 20);
    w.assumeTransposed = true;
    double near = double(run(Paradigm::NearL3, w).cycles);
    double inl3 = double(run(Paradigm::InL3, w).cycles);
    std::printf("\nvec_add/4M In-L3 over Near-L3: %.1fx (paper: 21x)\n",
                near / inl3);
    return 0;
}
