/**
 * @file
 * Fig 12: NoC traffic breakdown (control / data / offload, normalized to
 * Base) and NoC utilization (dots) for Base, Near-L3, and Inf-S.
 */

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("Fig 12: NoC Traffic Breakdown (bytes-x-hops, normalized "
                "to Base) and Utilization\n");
    std::printf("%-16s %-12s %10s %10s %10s %10s %8s\n", "benchmark",
                "config", "control", "data", "offload", "total", "util");

    double base_total_sum = 0.0, near_total_sum = 0.0, infs_total_sum = 0.0;
    for (const Entry &e : table3Workloads()) {
        double base_total = 1.0;
        for (Paradigm p :
             {Paradigm::Base, Paradigm::NearL3, Paradigm::InfS}) {
            ExecStats st = run(p, e.make());
            double control =
                st.nocHopBytes[unsigned(TrafficClass::Control)];
            double data = st.nocHopBytes[unsigned(TrafficClass::Data)];
            double offload =
                st.nocHopBytes[unsigned(TrafficClass::Offload)] +
                st.nocHopBytes[unsigned(TrafficClass::InterTile)];
            double total = control + data + offload;
            if (p == Paradigm::Base) {
                base_total = total > 0 ? total : 1.0;
                base_total_sum += 1.0;
            } else if (p == Paradigm::NearL3) {
                near_total_sum += total / base_total;
            } else {
                infs_total_sum += total / base_total;
            }
            std::printf("%-16s %-12s %10.3f %10.3f %10.3f %10.3f %7.1f%%\n",
                        p == Paradigm::Base ? e.name.c_str() : "",
                        paradigmName(p), control / base_total,
                        data / base_total, offload / base_total,
                        total / base_total, 100.0 * st.nocUtilization);
        }
    }
    unsigned n = static_cast<unsigned>(table3Workloads().size());
    std::printf("\navg traffic vs Base: Near-L3 %.2f (paper 0.71), "
                "Inf-S %.2f (paper 0.10)\n",
                near_total_sum / n, infs_total_sum / n);
    return 0;
}
