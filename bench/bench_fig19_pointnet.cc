/**
 * @file
 * Fig 19: PointNet++ SSG/MSG per-stage timeline under each paradigm
 * (normalized to each config's total), plus the end-to-end speedups over
 * Base (paper: Inf-S 1.69x SSG, 1.93x MSG).
 */

#include <map>

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

namespace {

/** Group phase names "SA1.sample" -> stage buckets of Fig 19. */
std::string
stageOf(const std::string &phase)
{
    auto dot = phase.rfind('.');
    std::string tail = dot == std::string::npos ? phase
                                                : phase.substr(dot + 1);
    std::string head = dot == std::string::npos ? phase
                                                : phase.substr(0, dot);
    if (tail == "sample")
        return head + " sample";
    if (tail == "query")
        return head + " query";
    if (tail == "gather")
        return head + " gather";
    if (tail.rfind("mlp", 0) == 0)
        return head + " mlp";
    if (tail == "aggregate")
        return head + " aggregate";
    return phase; // FC layers.
}

void
runNetwork(const char *title, const Workload &w)
{
    std::printf("\n--- %s ---\n", title);
    double base_cycles = 0.0;
    for (Paradigm p : {Paradigm::Base, Paradigm::NearL3, Paradigm::InL3,
                       Paradigm::InfS}) {
        ExecStats st = run(p, w);
        if (p == Paradigm::Base)
            base_cycles = double(st.cycles);
        std::printf("%-8s total %12llu cycles  speedup %.2fx | ",
                    paradigmName(p),
                    static_cast<unsigned long long>(st.cycles),
                    base_cycles / double(st.cycles));
        // Aggregate per-stage fractions (keep insertion order).
        std::vector<std::pair<std::string, double>> stages;
        for (const auto &[name, t] : st.phaseCycles) {
            std::string s = stageOf(name);
            bool found = false;
            for (auto &e : stages)
                if (e.first == s) {
                    e.second += double(t);
                    found = true;
                }
            if (!found)
                stages.emplace_back(s, double(t));
        }
        for (const auto &[s, t] : stages)
            if (t / double(st.cycles) >= 0.03)
                std::printf("%s %.0f%% ", s.c_str(),
                            100.0 * t / double(st.cycles));
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    std::printf("Fig 19: PointNet++ SSG/MSG Timelines (4k points)\n");
    runNetwork("SSG", makePointNetSSG(4096));
    runNetwork("MSG", makePointNetMSG(4096));
    std::printf("\npaper: Inf-S 1.69x (SSG) and 1.93x (MSG) over Base;\n"
                "Near-L3 accelerates sampling, In-L3 the large MLPs, and\n"
                "Inf-S fuses both.\n");
    return 0;
}
