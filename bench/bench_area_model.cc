/**
 * @file
 * §8 "Energy and Area": chip area accounting — in-memory compute
 * enhancement (sense amps, write drivers, second decoder, PEs) and
 * near-memory support logic on the McPAT baseline.
 */

#include <cstdio>

#include "energy/energy.hh"
#include "sim/config.hh"

using namespace infs;

int
main()
{
    AreaModel area;
    SystemConfig cfg = defaultSystemConfig();
    std::printf("Area model (22 nm)\n");
    std::printf("baseline CPU (McPAT):        %8.2f mm^2\n",
                area.baselineMm2);
    std::printf("in-memory compute overhead:  %8.2f mm^2 (paper: 66.75)\n",
                area.inMemoryMm2);
    std::printf("near-memory support logic:   %8.2f mm^2 (paper: 28.16)\n",
                area.nearMemoryMm2);
    std::printf("total chip:                  %8.2f mm^2\n",
                area.totalMm2());
    std::printf("whole-chip overhead:         %8.2f %% (paper: 6.52%%)\n",
                100.0 * area.overheadFraction());
    std::printf("\nper-array amortization: %llu compute arrays -> %.1f "
                "um^2 of compute overhead per 8 kB array\n",
                static_cast<unsigned long long>(
                    cfg.l3.totalComputeArrays()),
                1e6 * area.inMemoryMm2 /
                    double(cfg.l3.totalComputeArrays()));
    return 0;
}
