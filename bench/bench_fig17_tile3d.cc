/**
 * @file
 * Fig 17: Inf-S speedup vs 3-D tile size (X x Y x Z with X*Y*Z = 256)
 * for stencil3d and conv3d, normalized to the 256x1x1 tile; the
 * runtime-chosen tile is marked.
 */

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("Fig 17: Inf-S Speedup vs 3-D Tile Size (normalized to "
                "256x1x1)\n");
    struct Case {
        std::string name;
        std::function<Workload()> make;
    };
    std::vector<Case> cases{
        {"stencil3d", [] { return makeStencil3d(512, 512, 16, 10); }},
        {"conv3d", [] { return makeConv3d(256, 256, 64, 64); }},
    };

    for (const Case &c : cases) {
        std::printf("\n%s (rows = X tile, cols = Y tile, Z = 256/X/Y):\n",
                    c.name.c_str());
        double base_cycles = 0.0;
        {
            Workload w = c.make();
            w.forceTile = {256, 1, 1};
            base_cycles = double(run(Paradigm::InfS, w).cycles);
        }
        std::printf("%8s", "X\\Y");
        for (Coord y = 1; y <= 256; y *= 4)
            std::printf(" %7lld", (long long)y);
        std::printf("\n");
        for (Coord x = 256; x >= 1; x /= 4) {
            std::printf("%8lld", (long long)x);
            for (Coord y = 1; y <= 256; y *= 4) {
                if (x * y > 256) {
                    std::printf(" %7s", "-");
                    continue;
                }
                Coord z = 256 / (x * y);
                Workload w = c.make();
                w.forceTile = {x, y, z};
                double t = double(run(Paradigm::InfS, w).cycles);
                std::printf(" %7.2f", base_cycles / t);
            }
            std::printf("\n");
        }
        Workload w = c.make();
        ExecStats chosen = run(Paradigm::InfS, w);
        std::printf("runtime-chosen tile: ");
        for (Coord t : chosen.chosenTile)
            std::printf("%lld ", (long long)t);
        std::printf("(%.2fx over 256x1x1)\n",
                    base_cycles / double(chosen.cycles));
    }
    return 0;
}
