/**
 * @file
 * Ablations of the design choices DESIGN.md calls out: the e-graph
 * optimizer (compute reuse), JIT memoization, and the runtime tile
 * heuristic vs no tiling (innermost-contiguous layout).
 */

#include "bench_common.hh"
#include "egraph/egraph.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("Ablations\n");

    // --- E-graph optimizer: conv2d with and without compute reuse.
    {
        const Coord n = 2048;
        TdfgGraph g(2, "conv2d_raw");
        HyperRect inner = HyperRect::box2(1, n - 1, 1, n - 1);
        NodeId acc = invalidNode;
        for (Coord dj = -1; dj <= 1; ++dj)
            for (Coord di = -1; di <= 1; ++di) {
                NodeId t = g.tensor(0, inner.shifted(0, di).shifted(1, dj));
                NodeId a = t;
                if (di != 0)
                    a = g.move(a, 0, -di);
                if (dj != 0)
                    a = g.move(a, 1, -dj);
                int taps = (di != 0) + (dj != 0);
                NodeId term = g.compute(
                    BitOp::Mul,
                    {a, g.constant(taps == 2 ? 0.0625 : taps == 1 ? 0.125
                                                                  : 0.25)});
                acc = acc == invalidNode ? term
                                         : g.compute(BitOp::Add,
                                                     {acc, term});
            }
        g.output(acc, 1);

        auto costOf = [&](const TdfgGraph &gr) {
            InfinitySystem sys;
            TiledLayout lay({n, n}, {16, 16});
            auto prog = sys.jit().lower(gr, lay, sys.map());
            return sys.tensorController().execute(*prog, lay, 0).cycles;
        };
        TdfgOptimizer opt;
        ExtractionResult res = opt.optimize(g);
        auto count = [](const TdfgGraph &gr, BitOp fn) {
            unsigned c = 0;
            for (const TdfgNode &nd : gr.nodes())
                c += nd.kind == TdfgKind::Compute && nd.fn == fn;
            return c;
        };
        std::printf("\n[e-graph optimizer] conv2d 3x3 symmetric weights\n");
        std::printf("  multiplies: %u -> %u (%u rewrites)\n",
                    count(g, BitOp::Mul), count(res.graph, BitOp::Mul),
                    opt.rewritesApplied());
        Tick raw = costOf(g), optd = costOf(res.graph);
        std::printf("  in-memory cycles: %llu -> %llu (%.2fx)\n",
                    static_cast<unsigned long long>(raw),
                    static_cast<unsigned long long>(optd),
                    double(raw) / double(optd));
    }

    // --- JIT memoization: iterative stencil with and without reuse.
    {
        std::printf("\n[JIT memoization] stencil2d, 10 sweeps\n");
        Workload w = makeStencil2d(2048, 2048, 10);
        ExecStats with_memo = run(Paradigm::InfS, w);
        Workload no_memo = makeStencil2d(2048, 2048, 10);
        no_memo.phases[0].sameTdfgEachIter = false; // Re-lower each sweep.
        ExecStats without = run(Paradigm::InfS, no_memo);
        std::printf("  jit cycles: %llu (memoized) vs %llu (re-lowered), "
                    "total %.2fx\n",
                    static_cast<unsigned long long>(with_memo.jitCycles),
                    static_cast<unsigned long long>(without.jitCycles),
                    double(without.cycles) / double(with_memo.cycles));
    }

    // --- Tiling: runtime heuristic vs untiled innermost-contiguous.
    {
        std::printf("\n[tiling] stencil2d heuristic tile vs no tiling\n");
        Workload tiled = makeStencil2d(2048, 2048, 10);
        ExecStats t = run(Paradigm::InfS, tiled);
        Workload flat = makeStencil2d(2048, 2048, 10);
        flat.forceTile = {256, 1}; // Innermost-contiguous, no tiling.
        ExecStats f = run(Paradigm::InfS, flat);
        std::printf("  heuristic %llu vs untiled %llu cycles: %.2fx "
                    "(paper: 34%% avg gain from tiling)\n",
                    static_cast<unsigned long long>(t.cycles),
                    static_cast<unsigned long long>(f.cycles),
                    double(f.cycles) / double(t.cycles));
    }

    // --- Command-group overlap: disjoint decomposed tiles execute
    // concurrently; serializing them (per-command groups) shows the cost
    // the boundary decomposition would otherwise add.
    {
        std::printf("\n[group overlap] stencil2d boundary decomposition\n");
        InfinitySystem sys;
        const Coord n = 2048;
        TdfgGraph g(2, "stencil2d");
        HyperRect inner = HyperRect::box2(1, n - 1, 1, n - 1);
        NodeId acc = g.tensor(0, inner);
        for (unsigned dim = 0; dim < 2; ++dim)
            for (Coord d : {Coord(-1), Coord(1)}) {
                NodeId t2 = g.tensor(0, inner.shifted(dim, d));
                acc = g.compute(BitOp::Add, {acc, g.move(t2, dim, -d)});
            }
        g.output(acc, 1);
        TiledLayout lay({n, n}, {16, 16});
        auto prog = sys.jit().lower(g, lay, sys.map());
        Tick overlapped =
            sys.tensorController().execute(*prog, lay, 0).cycles;
        InMemProgram serial = *prog;
        for (unsigned i = 0; i < serial.commands.size(); ++i)
            serial.commands[i].group = i; // Defeat the overlap.
        Tick serialized =
            sys.tensorController().execute(serial, lay, 0).cycles;
        std::printf("  overlapped %llu vs serialized %llu cycles "
                    "(%.2fx)\n",
                    static_cast<unsigned long long>(overlapped),
                    static_cast<unsigned long long>(serialized),
                    double(serialized) / double(overlapped));
    }
    return 0;
}
