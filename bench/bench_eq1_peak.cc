/**
 * @file
 * Eq. 1: peak int32-add throughput of the in-memory fabric vs the
 * multicore baseline, verified analytically and by executing a bit-serial
 * add program through the tensor controller.
 */

#include "bench_common.hh"
#include "jit/jit.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    SystemConfig cfg = defaultSystemConfig();
    std::printf("Eq. 1: Max System Speedup\n%s\n", cfg.summary().c_str());

    // T = Nbank x Nway x Narray/way x Nbitline / Latency.
    double bitlines = double(cfg.l3.totalBitlines());
    LatencyTable lat;
    double int32_add = double(lat.opCycles(BitOp::Add, DType::Int32));
    double peak = bitlines / int32_add;
    double base = cfg.basePeakOpsPerCycle();
    std::printf("in-memory peak: %.0f int32 adds/cycle (paper: 131072)\n",
                peak);
    std::printf("baseline peak:  %.0f ops/cycle (paper: 1024)\n", base);
    std::printf("peak speedup:   %.0fx (paper: 128x)\n", peak / base);

    // Measured: one bit-serial int-add command across all bitlines.
    InfinitySystem sys;
    TdfgGraph g(1, "peak_probe");
    Coord n = static_cast<Coord>(cfg.l3.totalBitlines());
    NodeId a = g.tensor(0, HyperRect::interval(0, n));
    NodeId b = g.tensor(1, HyperRect::interval(0, n));
    g.output(g.compute(BitOp::Add, {a, b}), 2);
    TiledLayout lay({n}, {Coord(cfg.l3.bitlines)});
    auto prog = sys.jit().lower(g, lay, sys.map());
    InMemExecResult r = sys.tensorController().execute(*prog, lay, 0);
    // The command runs fp32 in the default tables; report the achieved
    // ops/cycle using the fp32 latency for an apples-to-apples check.
    double achieved = double(r.inMemOps) / double(r.cycles);
    std::printf("measured (fp32 add incl. sync/dispatch): %.0f ops/cycle, "
                "%.1f%% of the fp32 peak\n",
                achieved, 100.0 * achieved /
                              (bitlines / double(lat.fp32Add)));
    return 0;
}
