/**
 * @file
 * Fig 16: Inf-S cycles vs 2-D tile size (1x256 .. 256x1) for the 2-D
 * workloads, the tile the runtime heuristic picks, and its distance from
 * the oracle (paper: within 2%).
 */

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("Fig 16: Inf-S Cycles vs 2-D Tile Size (normalized to the "
                "best tile)\n");

    struct Case {
        std::string name;
        std::function<Workload()> make;
    };
    std::vector<Case> cases{
        {"stencil2d", [] { return makeStencil2d(2048, 2048, 10); }},
        {"dwt2d", [] { return makeDwt2d(2048, 2048); }},
        {"gauss_elim", [] { return makeGaussElim(2048); }},
        {"conv2d", [] { return makeConv2d(2048, 2048); }},
        {"mm/out", [] { return makeMm(2048, 2048, 2048, true); }},
        {"kmeans/out",
         [] { return makeKmeans(32 << 10, 128, 128, true); }},
        {"gather_mlp/out",
         [] { return makeGatherMlp(32 << 10, 128, 128, 64 << 10, true); }},
    };

    std::vector<std::pair<Coord, Coord>> tiles;
    for (Coord x = 256; x >= 1; x /= 2)
        tiles.emplace_back(x, 256 / x);

    std::printf("%-16s", "benchmark");
    for (auto [x, y] : tiles)
        std::printf(" %3lldx%-4lld", (long long)x, (long long)y);
    std::printf(" %10s %8s\n", "chosen", "vs-best");

    double worst_gap = 0.0;
    for (const Case &c : cases) {
        std::vector<double> cycles;
        double best = 1e300;
        for (auto [x, y] : tiles) {
            Workload w = c.make();
            w.forceTile = {x, y};
            double t = double(run(Paradigm::InfS, w).cycles);
            cycles.push_back(t);
            best = std::min(best, t);
        }
        // Runtime-chosen tile.
        Workload w = c.make();
        ExecStats chosen = run(Paradigm::InfS, w);
        std::printf("%-16s", c.name.c_str());
        for (double t : cycles)
            std::printf(" %8.2f", t / best);
        double gap = double(chosen.cycles) / best - 1.0;
        worst_gap = std::max(worst_gap, gap);
        std::printf(" %6lldx%-3lld %+7.1f%%\n",
                    chosen.chosenTile.size() > 0
                        ? (long long)chosen.chosenTile[0] : 0LL,
                    chosen.chosenTile.size() > 1
                        ? (long long)chosen.chosenTile[1] : 0LL,
                    100.0 * gap);
    }
    std::printf("\nworst heuristic-vs-oracle gap: %.1f%% (paper: within "
                "2%%)\n",
                100.0 * worst_gap);
    return 0;
}
