/**
 * @file
 * Fig 13: Inf-S traffic breakdown across the 13 implementation variants —
 * intra-tile shifts (inside SRAM arrays), inter-tile shifts (H tree and
 * NoC), and the conventional NoC classes. Fractions of each row's total.
 */

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("Fig 13: Inf-S Traffic Breakdown (fraction of row total)\n");
    std::printf("%-16s %10s %10s %10s %10s %10s %10s\n", "benchmark",
                "intra", "inter-HT", "inter-NoC", "offload", "data",
                "control");
    for (const Entry &e : table3Variants()) {
        ExecStats st = run(Paradigm::InfS, e.make());
        double intra = st.intraTileBytes;
        double inter_noc = st.nocHopBytes[unsigned(TrafficClass::InterTile)];
        double inter_ht = st.interTileBytes - st.interTileNocBytes;
        if (inter_ht < 0)
            inter_ht = 0;
        double offload = st.nocHopBytes[unsigned(TrafficClass::Offload)];
        double data = st.nocHopBytes[unsigned(TrafficClass::Data)];
        double control = st.nocHopBytes[unsigned(TrafficClass::Control)];
        double total =
            intra + inter_ht + inter_noc + offload + data + control;
        if (total <= 0)
            total = 1;
        std::printf("%-16s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                    e.name.c_str(), intra / total, inter_ht / total,
                    inter_noc / total, offload / total, data / total,
                    control / total);
    }
    std::printf("\npaper's takeaway: a reasonable tile size converts most "
                "data movement into intra-tile shifts.\n");
    return 0;
}
