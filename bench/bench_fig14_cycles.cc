/**
 * @file
 * Fig 14: Inf-S cycle breakdown — DRAM (fetch+transpose), JIT lowering,
 * tensor moves, bit-serial compute, final reduce, hybrid mix, pure
 * near-memory — plus the fraction of ops executed in-memory (the dots).
 */

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("Fig 14: Inf-S Cycle Breakdown (fraction of total)\n");
    std::printf("%-16s %8s %8s %8s %8s %8s %8s %8s %8s %8s\n", "benchmark",
                "dram", "jit", "move", "compute", "finred", "mix", "near",
                "core", "inmem%");
    double sum_dram = 0, sum_jit = 0, sum_move = 0, sum_compute = 0;
    unsigned n = 0;
    for (const Entry &e : table3Variants()) {
        ExecStats st = run(Paradigm::InfS, e.make());
        double total = double(st.cycles);
        if (total <= 0)
            total = 1;
        auto frac = [&](Tick t) { return double(t) / total; };
        // Move/compute/sync are per-command occupancy sums; banks overlap,
        // so scale them to fill the in-memory share of the makespan.
        double inmem_span =
            std::max(0.0, total - double(st.dramCycles) -
                              double(st.jitCycles) -
                              double(st.finalReduceCycles) -
                              double(st.mixCycles) -
                              double(st.nearMemCycles) -
                              double(st.coreCycles));
        double occupancy = double(st.moveCycles) +
                           double(st.computeCycles) +
                           double(st.syncCycles);
        double scale = occupancy > 0 ? inmem_span / occupancy : 0.0;
        std::printf(
            "%-16s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %7.1f%%\n",
            e.name.c_str(), frac(st.dramCycles), frac(st.jitCycles),
            double(st.moveCycles) * scale / total,
            double(st.computeCycles) * scale / total,
            frac(st.finalReduceCycles), frac(st.mixCycles),
            frac(st.nearMemCycles), frac(st.coreCycles),
            100.0 * st.inMemOpFraction());
        sum_dram += frac(st.dramCycles);
        sum_jit += frac(st.jitCycles);
        sum_move += double(st.moveCycles) * scale / total;
        sum_compute += double(st.computeCycles) * scale / total;
        ++n;
    }
    std::printf("\navg: dram %.0f%% (paper 26%%), compute %.0f%% (paper "
                "32%%), move %.0f%% (paper 19%%), jit %.0f%% (paper 11%%)\n",
                100.0 * sum_dram / n, 100.0 * sum_compute / n,
                100.0 * sum_move / n, 100.0 * sum_jit / n);
    return 0;
}
