/**
 * @file
 * Fig 11: overall speedup of Near-L3 / In-L3 / Inf-S / Inf-S-noJIT over
 * the multicore Base across the ten Table 3 benchmarks, with geomean.
 * For mm/kmeans/gather_mlp the best dataflow is chosen per configuration
 * (§7), mirroring the paper's methodology.
 */

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("Fig 11: Overall Speedup (over 64-thread Base)\n");
    std::printf("%s\n", defaultSystemConfig().summary().c_str());
    printHeader("speedup",
                {"Base", "Near-L3", "In-L3", "Inf-S", "Inf-S-noJIT"});

    // Dataflow-flexible workloads get best-of-both per paradigm.
    auto mm = [](bool outer) { return makeMm(2048, 2048, 2048, outer); };
    auto km = [](bool outer) {
        return makeKmeans(32 << 10, 128, 128, outer);
    };
    auto gm = [](bool outer) {
        return makeGatherMlp(32 << 10, 128, 128, 64 << 10, outer);
    };

    struct Flexible {
        std::string name;
        std::function<Workload(bool)> make;
    };
    std::vector<Flexible> flexible{{"mm", mm}, {"kmeans", km},
                                   {"gather_mlp", gm}};

    std::vector<Paradigm> configs{Paradigm::Base, Paradigm::NearL3,
                                  Paradigm::InL3, Paradigm::InfS,
                                  Paradigm::InfSNoJit};
    std::vector<std::vector<double>> speedups(configs.size());

    for (const Entry &e : table3Workloads()) {
        bool flex = false;
        for (const Flexible &f : flexible)
            flex |= (f.name == e.name);
        std::vector<double> row;
        double base = 0.0;
        for (std::size_t c = 0; c < configs.size(); ++c) {
            ExecStats st;
            if (flex) {
                for (const Flexible &f : flexible)
                    if (f.name == e.name)
                        st = runBest(configs[c], f.make);
            } else {
                st = run(configs[c], e.make());
            }
            if (c == 0)
                base = double(st.cycles);
            double sp = base / double(st.cycles);
            row.push_back(sp);
            speedups[c].push_back(sp);
        }
        printRow(e.name, row);
    }
    std::vector<double> gm_row;
    for (auto &v : speedups)
        gm_row.push_back(geomean(v));
    printRow("geomean", gm_row);

    std::printf("\npaper: Near-L3 2.0x, In-L3 %.1fx over Near-L3 (paper "
                "2.1x), Inf-S %.1fx over Near-L3 (paper 2.6x), noJIT +%.0f%%"
                " over Inf-S (paper +19%%)\n",
                gm_row[2] / gm_row[1], gm_row[3] / gm_row[1],
                100.0 * (gm_row[4] / gm_row[3] - 1.0));
    return 0;
}
