/**
 * @file
 * §8 "JIT Overheads": per-workload JIT lowering time (mean in us at 2 GHz
 * and fraction of runtime), memoization behaviour, and the Inf-S-noJIT
 * headroom. The paper reports a 220 us average with gauss_elim as the
 * 1616 us outlier (51% of runtime) because its shrinking tensors defeat
 * memoization.
 */

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("JIT Overheads (Inf-S)\n");
    std::printf("%-16s %12s %12s %10s %10s %10s\n", "benchmark",
                "jit-cycles", "jit-us", "jit-share", "lowerings",
                "memo-hits");
    double total_us = 0.0;
    unsigned n = 0;
    for (const Entry &e : table3Variants()) {
        InfinitySystem sys;
        Executor exec(sys, Paradigm::InfS);
        ExecStats st = exec.run(e.make());
        const JitStats &js = sys.jit().stats();
        double us = ticksToUs(st.jitCycles);
        double per_lowering_us =
            js.lowerings ? us / double(js.lowerings) : 0.0;
        (void)per_lowering_us;
        std::printf("%-16s %12llu %12.1f %9.1f%% %10llu %10llu\n",
                    e.name.c_str(),
                    static_cast<unsigned long long>(st.jitCycles), us,
                    100.0 * double(st.jitCycles) /
                        double(std::max<Tick>(st.cycles, 1)),
                    static_cast<unsigned long long>(js.lowerings),
                    static_cast<unsigned long long>(js.memoHits));
        total_us += us;
        ++n;
    }
    std::printf("\nmean JIT time %.0f us across variants (paper mean: "
                "220 us, gauss_elim outlier 1616 us)\n",
                total_us / n);

    // Inf-S-noJIT headroom (paper: +19%).
    std::vector<double> ratios;
    for (const Entry &e : table3Workloads()) {
        double with_jit = double(run(Paradigm::InfS, e.make()).cycles);
        double no_jit = double(run(Paradigm::InfSNoJit, e.make()).cycles);
        ratios.push_back(with_jit / no_jit);
    }
    std::printf("Inf-S-noJIT speedup over Inf-S (geomean): %.2fx (paper: "
                "1.19x)\n",
                geomean(ratios));
    return 0;
}
