/**
 * @file
 * Host-side performance microbenchmarks (google-benchmark): the cost of
 * the simulator's own hot paths — bit-serial ops over a 256x256 array,
 * the TTU transpose, Alg. 1 decomposition, Alg. 2 lowering, JIT lowering
 * of a full stencil, and e-graph optimization.
 */

#include <benchmark/benchmark.h>

#include "bitserial/compute_sram.hh"
#include "bitserial/transpose.hh"
#include "egraph/egraph.hh"
#include "jit/jit.hh"
#include "sim/rng.hh"

namespace infs {
namespace {

void
BM_BitSerialInt32Add(benchmark::State &state)
{
    ComputeSram sram(256, 256);
    Rng rng(1);
    for (unsigned bl = 0; bl < 256; ++bl) {
        sram.writeElement(bl, 0, DType::Int32, rng.next() & 0xffffffff);
        sram.writeElement(bl, 32, DType::Int32, rng.next() & 0xffffffff);
    }
    BitRow mask = sram.fullMask();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sram.execBinary(BitOp::Add, DType::Int32, 0, 32, 64, mask));
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BitSerialInt32Add);

void
BM_BitSerialInt32Mul(benchmark::State &state)
{
    ComputeSram sram(256, 256);
    Rng rng(2);
    for (unsigned bl = 0; bl < 256; ++bl) {
        sram.writeElement(bl, 0, DType::Int32, rng.next() & 0xffffffff);
        sram.writeElement(bl, 32, DType::Int32, rng.next() & 0xffffffff);
    }
    BitRow mask = sram.fullMask();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sram.execBinary(BitOp::Mul, DType::Int32, 0, 32, 64, mask));
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BitSerialInt32Mul);

void
BM_TransposeRoundTrip(benchmark::State &state)
{
    ComputeSram sram(256, 256);
    TensorTransposeUnit ttu;
    std::vector<std::uint64_t> data(256);
    Rng rng(3);
    for (auto &v : data)
        v = rng.next() & 0xffffffff;
    for (auto _ : state) {
        ttu.loadTransposed(sram, data, DType::Fp32, 0);
        ttu.storeFromTransposed(sram, data, DType::Fp32, 0);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TransposeRoundTrip);

void
BM_DecomposeTensor(benchmark::State &state)
{
    HyperRect t = HyperRect::box2(3, 2041, 5, 2043);
    std::vector<Coord> tile{16, 16};
    for (auto _ : state)
        benchmark::DoNotOptimize(decomposeTensor(t, tile));
}
BENCHMARK(BM_DecomposeTensor);

void
BM_CompileMove(benchmark::State &state)
{
    HyperRect t = HyperRect::box2(0, 2048, 0, 2048);
    for (auto _ : state)
        benchmark::DoNotOptimize(compileMove(t, 0, state.range(0), 16));
}
BENCHMARK(BM_CompileMove)->Arg(1)->Arg(17)->Arg(-5);

void
BM_JitLowerStencil(benchmark::State &state)
{
    SystemConfig cfg = defaultSystemConfig();
    AddressMap map(cfg.l3);
    const Coord n = 2048;
    TdfgGraph g(2, "stencil2d");
    HyperRect inner = HyperRect::box2(1, n - 1, 1, n - 1);
    NodeId c = g.tensor(0, inner);
    NodeId l = g.move(g.tensor(0, inner.shifted(0, -1)), 0, 1);
    NodeId r = g.move(g.tensor(0, inner.shifted(0, 1)), 0, -1);
    NodeId u = g.move(g.tensor(0, inner.shifted(1, -1)), 1, 1);
    NodeId d = g.move(g.tensor(0, inner.shifted(1, 1)), 1, -1);
    g.output(g.compute(BitOp::Add, {c, l, r, u, d}), 1);
    TiledLayout lay({n, n}, {16, 16});
    for (auto _ : state) {
        JitCompiler jit(cfg);
        benchmark::DoNotOptimize(jit.lower(g, lay, map));
    }
}
BENCHMARK(BM_JitLowerStencil);

void
BM_EGraphOptimizeStencil(benchmark::State &state)
{
    const Coord n = 1024;
    TdfgGraph g(1, "sym_stencil");
    NodeId a0 = g.tensor(0, HyperRect::interval(0, n - 2));
    NodeId a1 = g.tensor(0, HyperRect::interval(1, n - 1));
    NodeId a2 = g.tensor(0, HyperRect::interval(2, n));
    NodeId c0 = g.constant(0.25);
    NodeId c1 = g.constant(0.5);
    NodeId s = g.compute(
        BitOp::Add,
        {g.move(g.compute(BitOp::Mul, {a0, c0}), 0, 1),
         g.compute(BitOp::Mul, {a1, c1}),
         g.move(g.compute(BitOp::Mul, {a2, c0}), 0, -1)});
    g.output(s, 1);
    for (auto _ : state) {
        TdfgOptimizer opt;
        benchmark::DoNotOptimize(opt.optimize(g));
    }
}
BENCHMARK(BM_EGraphOptimizeStencil);

} // namespace
} // namespace infs

BENCHMARK_MAIN();
