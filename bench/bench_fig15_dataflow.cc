/**
 * @file
 * Fig 15: inner- vs outer-product dataflow for mm, kmeans, and
 * gather_mlp on Base / Near-L3 / Inf-S, normalized to Base with the
 * (tiled) inner-product implementation.
 */

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("Fig 15: Inner vs Outer Product Dataflow (speedup over "
                "Base-inner)\n");
    printHeader("speedup", {"Base-In", "Base-Out", "Near-In", "Near-Out",
                            "InfS-In", "InfS-Out"});

    struct Flexible {
        std::string name;
        std::function<Workload(bool)> make;
    };
    std::vector<Flexible> flex{
        {"mm", [](bool o) { return makeMm(2048, 2048, 2048, o); }},
        {"kmeans",
         [](bool o) { return makeKmeans(32 << 10, 128, 128, o); }},
        {"gather_mlp",
         [](bool o) {
             return makeGatherMlp(32 << 10, 128, 128, 64 << 10, o);
         }},
    };

    std::vector<double> infs_out_speedups;
    for (const Flexible &f : flex) {
        double base_in = double(run(Paradigm::Base, f.make(false)).cycles);
        std::vector<double> row;
        for (Paradigm p :
             {Paradigm::Base, Paradigm::NearL3, Paradigm::InfS}) {
            row.push_back(base_in / double(run(p, f.make(false)).cycles));
            row.push_back(base_in / double(run(p, f.make(true)).cycles));
        }
        infs_out_speedups.push_back(row.back());
        printRow(f.name, row);
    }
    std::printf("\nInf-S outer geomean over Base-inner: %.1fx (paper "
                "4.4x)\n",
                geomean(infs_out_speedups));
    return 0;
}
