/**
 * @file
 * Fig 18: energy efficiency (Base energy / config energy) for Near-L3 /
 * In-L3 / Inf-S / Inf-S-noJIT across the Table 3 benchmarks.
 */

#include "bench_common.hh"

using namespace infs;
using namespace infs::bench;

int
main()
{
    std::printf("Fig 18: Energy Efficiency over Base\n");
    printHeader("energy eff.",
                {"Base", "Near-L3", "In-L3", "Inf-S", "Inf-S-noJIT"});
    std::vector<std::vector<double>> effs(5);
    for (const Entry &e : table3Workloads()) {
        double base_j = run(Paradigm::Base, e.make()).energyJoules;
        std::vector<double> row;
        unsigned c = 0;
        for (Paradigm p : {Paradigm::Base, Paradigm::NearL3,
                           Paradigm::InL3, Paradigm::InfS,
                           Paradigm::InfSNoJit}) {
            double j = run(p, e.make()).energyJoules;
            double eff = j > 0 ? base_j / j : 0.0;
            row.push_back(eff);
            effs[c++].push_back(eff);
        }
        printRow(e.name, row);
    }
    std::vector<double> gm;
    for (auto &v : effs)
        gm.push_back(geomean(v));
    printRow("geomean", gm);
    std::printf("\nIn-L3 %.1fx and Inf-S %.1fx over Near-L3 (paper: 1.5x "
                "and 2.4x)\n",
                gm[2] / gm[1], gm[3] / gm[1]);
    return 0;
}
